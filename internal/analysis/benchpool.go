package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Benchpool confines the bench harness's concurrency to the worker-pool
// seam (internal/bench/pool.go). A sweep experiment that spawns its own
// goroutines or plumbs channels re-derives — usually wrongly — the
// properties runCells already guarantees: deterministic result
// ordering, per-cell panic isolation, and a worker count bounded by the
// -sweepworkers flag. The invariant shipped with the pool itself, per
// the ROADMAP rule that every new invariant gets an analyzer: future
// experiments inherit parallelism by enumerating cells and folding in
// order, never by hand-rolled fan-out.
var Benchpool = &Analyzer{
	Name: "benchpool",
	Doc:  "confine goroutines and channel plumbing in internal/bench to the worker-pool seam (pool.go)",
	Run:  runBenchpool,
}

const (
	benchpoolScope = "repro/internal/bench"
	benchpoolSeam  = "pool.go"
)

func runBenchpool(pass *Pass) error {
	if pass.Pkg == nil || pass.Pkg.Path() != benchpoolScope {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue // tests may orchestrate concurrency to probe the pool
		}
		if pass.Filename(f) == benchpoolSeam {
			continue // the one audited concurrency seam
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "goroutine outside the pool seam: run sweep cells through runCells (pool.go), which already gives deterministic ordering, panic isolation and the -sweepworkers bound")
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(), "select outside the pool seam: channel fan-out belongs behind runCells (pool.go)")
			case *ast.SendStmt:
				pass.Reportf(n.Pos(), "channel send outside the pool seam: result plumbing belongs behind runCells (pool.go), which folds results in cell order")
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					pass.Reportf(n.Pos(), "channel receive outside the pool seam: result plumbing belongs behind runCells (pool.go), which folds results in cell order")
				}
			case *ast.ChanType:
				pass.Reportf(n.Pos(), "channel type outside the pool seam: the bench harness's one concurrency primitive is runCells (pool.go)")
			case *ast.RangeStmt:
				if t := pass.TypesInfo.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						pass.Reportf(n.Pos(), "range over a channel outside the pool seam: result plumbing belongs behind runCells (pool.go)")
					}
				}
			}
			return true
		})
	}
	return nil
}
