package analysis

import (
	"go/types"
)

// GlobalRand forbids the package-level math/rand functions (rand.Intn,
// rand.Shuffle, rand.Seed, ...) everywhere, tests included. The global
// generator is process-wide mutable state: any call site perturbs the
// value stream of every other, so results stop being a function of the
// run's seed the moment two call sites interleave — and goldens pin
// results bit-for-bit. Randomness must flow from an explicitly seeded
// generator: rand.New(rand.NewSource(seed)) or core.RowRNG.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "forbid package-level math/rand functions; seeded *rand.Rand / core.RowRNG only",
	Run:  runGlobalRand,
}

// globalRandOK are the constructors that produce explicitly seeded
// state instead of touching the global generator.
var globalRandOK = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func runGlobalRand(pass *Pass) error {
	for id, obj := range pass.TypesInfo.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			continue
		}
		path := fn.Pkg().Path()
		if path != "math/rand" && path != "math/rand/v2" {
			continue
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			continue // methods of *rand.Rand etc. are the sanctioned API
		}
		if globalRandOK[fn.Name()] {
			continue
		}
		pass.Reportf(id.Pos(),
			"global math/rand state: %s.%s draws from the shared process-wide generator, so results depend on unrelated call sites; use a seeded *rand.Rand or core.RowRNG",
			path, fn.Name())
	}
	return nil
}
