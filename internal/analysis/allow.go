package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// Suppression markers.
//
// A finding is silenced by a line comment of the form
//
//	//gnnvet:allow <check> — <reason>
//
// placed either on the flagged line (trailing comment) or on the line
// directly above it (standalone comment). The reason is mandatory: a
// marker without one suppresses nothing and is itself reported, so an
// allow site can never be waved through unexplained. The separator may
// be an em dash or "--"/"-". Markers naming a check gnnvet does not
// ship are reported too — they would otherwise rot silently when a
// check is renamed.

var allowRe = regexp.MustCompile(`^gnnvet:allow\s+([A-Za-z][A-Za-z0-9_-]*)\s*(?:—|–|--|-)\s*(\S.*)$`)

// allowIndex maps check name -> set of source lines (per file) the
// check is suppressed on.
type allowIndex struct {
	lines   map[string]map[lineKey]bool
	markers int // well-formed markers seen (for -expectallows)
}

type lineKey struct {
	file string
	line int
}

// ParseAllows scans the files' comments for gnnvet:allow markers.
// It returns the suppression index plus diagnostics for malformed
// markers (missing reason, unknown check name).
func ParseAllows(fset *token.FileSet, files []*ast.File, known map[string]bool) (*allowIndex, []Diagnostic) {
	idx := &allowIndex{lines: map[string]map[lineKey]bool{}}
	var diags []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "gnnvet:allow") {
					continue
				}
				m := allowRe.FindStringSubmatch(text)
				if m == nil {
					diags = append(diags, Diagnostic{
						Pos:   c.Pos(),
						Check: "allow",
						Message: "malformed gnnvet:allow marker: want " +
							"//gnnvet:allow <check> — <reason> (the reason is mandatory)",
					})
					continue
				}
				check := m[1]
				if known != nil && !known[check] {
					diags = append(diags, Diagnostic{
						Pos:     c.Pos(),
						Check:   "allow",
						Message: fmt.Sprintf("gnnvet:allow names unknown check %q", check),
					})
					continue
				}
				idx.markers++
				pos := fset.Position(c.Pos())
				set := idx.lines[check]
				if set == nil {
					set = map[lineKey]bool{}
					idx.lines[check] = set
				}
				// The marker covers its own line (trailing-comment
				// form) and the line below (standalone form).
				set[lineKey{pos.Filename, pos.Line}] = true
				set[lineKey{pos.Filename, pos.Line + 1}] = true
			}
		}
	}
	return idx, diags
}

// allowed reports whether check is suppressed at pos's line. The facts
// layer consults it while seeding atoms, so an audited exception does
// not taint its transitive callers.
func (idx *allowIndex) allowed(check string, fset *token.FileSet, pos token.Pos) bool {
	set := idx.lines[check]
	if set == nil {
		return false
	}
	p := fset.Position(pos)
	return set[lineKey{p.Filename, p.Line}]
}

// Markers returns the number of well-formed markers parsed.
func (idx *allowIndex) Markers() int { return idx.markers }

// Filter drops diagnostics whose (file, line) carries an allow marker
// for their check.
func (idx *allowIndex) Filter(fset *token.FileSet, diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		set := idx.lines[d.Check]
		if set != nil {
			pos := fset.Position(d.Pos)
			if set[lineKey{pos.Filename, pos.Line}] {
				continue
			}
		}
		out = append(out, d)
	}
	return out
}
