// Package analysistest runs one analyzer over a fixture directory and
// checks its findings against want-annotations, mirroring
// golang.org/x/tools/go/analysis/analysistest on the in-repo
// framework.
//
// A fixture file marks each line it expects findings on with a
// trailing comment of quoted regexes:
//
//	sum += v // want `float accumulation` `second finding on this line`
//
// Every diagnostic must match a want on its line and every want must
// be matched — unexpected and missing findings both fail the test.
// Suppression markers are honored exactly as in gnnvet (the driver
// shares analysis.RunPackage), so fixtures exercise the allowed path
// too: a line carrying //gnnvet:allow <check> — <reason> and no want
// asserts the marker silences the finding.
package analysistest

import (
	"go/token"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run loads dir as a single package under importPath, applies the
// analyzer (with suppression markers honored), and compares findings
// with the fixture's want-annotations. The import path matters:
// several analyzers scope themselves by package path, so e.g. a
// charging fixture must load as repro/internal/cluster.
func Run(t *testing.T, a *analysis.Analyzer, dir, importPath string) {
	t.Helper()
	fset := token.NewFileSet()
	pkg, err := analysis.LoadFixture(fset, dir, importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := analysis.RunPackage(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	wants := parseWants(t, fset, pkg)
	got := map[lineKey][]string{}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := lineKey{pos.Filename, pos.Line}
		got[k] = append(got[k], d.Message)
	}

	keys := map[lineKey]bool{}
	for k := range wants {
		keys[k] = true
	}
	for k := range got {
		keys[k] = true
	}
	sorted := make([]lineKey, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].file != sorted[j].file {
			return sorted[i].file < sorted[j].file
		}
		return sorted[i].line < sorted[j].line
	})

	for _, k := range sorted {
		matchLine(t, k, wants[k], got[k])
	}
}

type lineKey struct {
	file string
	line int
}

// matchLine pairs each diagnostic on a line with a distinct want
// regex.
func matchLine(t *testing.T, k lineKey, wants []*regexp.Regexp, msgs []string) {
	t.Helper()
	used := make([]bool, len(wants))
outer:
	for _, msg := range msgs {
		for i, w := range wants {
			if !used[i] && w.MatchString(msg) {
				used[i] = true
				continue outer
			}
		}
		t.Errorf("%s:%d: unexpected finding: %s", k.file, k.line, msg)
	}
	for i, w := range wants {
		if !used[i] {
			t.Errorf("%s:%d: expected finding matching %q, got none", k.file, k.line, w)
		}
	}
}

// wantRe pulls the quoted regexes off a want comment; both `...` and
// "..." quoting are accepted.
var wantArgRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func parseWants(t *testing.T, fset *token.FileSet, pkg *analysis.Package) map[lineKey][]*regexp.Regexp {
	t.Helper()
	wants := map[lineKey][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				k := lineKey{pos.Filename, pos.Line}
				args := c.Text[idx+len("// want "):]
				matches := wantArgRe.FindAllString(args, -1)
				if len(matches) == 0 {
					t.Fatalf("%s:%d: want comment with no quoted regexes: %s", k.file, k.line, c.Text)
				}
				for _, m := range matches {
					var pat string
					if m[0] == '`' {
						pat = m[1 : len(m)-1]
					} else {
						var err error
						pat, err = strconv.Unquote(m)
						if err != nil {
							t.Fatalf("%s:%d: bad want string %s: %v", k.file, k.line, m, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", k.file, k.line, pat, err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}
	return wants
}
