package analysis

import (
	"go/ast"
)

// Walltime forbids reading the wall clock in non-test code. Every run
// of the simulator must be a pure function of its config: simulated
// time lives on Rank clocks, and the perf gate treats any sim_sec
// drift as a correctness breach. A time.Now or time.Sleep smuggled
// into a charging path would make results machine- and load-dependent
// (and a Sleep additionally stalls the DES backend, which runs one
// task at a time and never advances wall time). The bench harness's
// wall-timing of real executions and CLI-facing code are the audited
// exceptions, each carrying a //gnnvet:allow walltime marker.
var Walltime = &Analyzer{
	Name: "walltime",
	Doc:  "forbid wall-clock time (time.Now/Since/Sleep/...) where simulated clocks rule",
	Run:  runWalltime,
}

// walltimeFuncs are the time-package functions that observe or depend
// on the wall clock. Pure-value helpers (time.Duration arithmetic,
// time.Unix construction, parsing) are fine.
var walltimeFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

func runWalltime(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue // tests may time themselves
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				fn := funcObj(pass.TypesInfo, n.Sel)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
					return true
				}
				if walltimeFuncs[fn.Name()] {
					pass.Reportf(n.Pos(),
						"wall clock in simulated-time code: time.%s makes the run a function of the machine, not the config (simulated time lives on Rank clocks)",
						fn.Name())
				}
			case *ast.CallExpr:
				// Transitive: a helper whose summary says it reaches the
				// wall clock is as machine-dependent as time.Now itself.
				// An atom under a //gnnvet:allow seeds no fact, so an
				// audited exception does not taint its callers.
				if pass.Facts == nil {
					return true
				}
				fn := calleeFunc(pass.TypesInfo, n)
				if fn != nil && pass.Facts.Has(fn, FactWallClock) {
					pass.Reportf(n.Pos(),
						"call reaches the wall clock: %s → %s — the run becomes a function of the machine, not the config",
						shortKey(FuncKey(fn)), pass.Facts.Via(fn, FactWallClock))
				}
			}
			return true
		})
	}
	return nil
}
