package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"sort"
)

// ParkWake keeps cluster-driven code on the backend-neutral blocking
// primitives. Under the goroutine backend a naked channel receive or
// WaitGroup.Wait merely blocks a goroutine; under the discrete-event
// backend (PR 6) there is exactly one runnable task, so any wait that
// does not park on the scheduler (Queue.Send/Recv, Forked.Join, the
// collective rendezvous) hangs the whole simulation. Equally fatal:
// parking while holding a mutex — the task that would wake us may
// first need that lock. The primitive layer itself (queue.go, comm.go,
// p2p.go — the files that implement park/wake on both backends) is
// exempt; everything above it must go through them.
var ParkWake = &Analyzer{
	Name: "parkwake",
	Doc:  "cluster-driven code must block through backend-neutral park/wake, never raw channels/WaitGroups, and never park holding a mutex",
	Run:  runParkWake,
}

// parkWakeScope is the set of packages that run on rank timelines.
// The scheduler itself (internal/cluster/sim) is the machinery below
// the seam and is out of scope.
var parkWakeScope = map[string]bool{
	"repro/internal/cluster":    true,
	"repro/internal/engine":     true,
	"repro/internal/pipeline":   true,
	"repro/internal/baseline":   true,
	"repro/internal/distsample": true,
}

// parkWakeExemptFiles implement the park/wake seam and legitimately
// touch channels (their goroutine-backend halves).
var parkWakeExemptFiles = map[string]bool{
	"queue.go": true,
	"comm.go":  true,
	"p2p.go":   true,
}

// parkCalls names the functions that may park the calling task,
// keyed by (package path, receiver type name or "" for package-level,
// function name).
type parkKey struct{ pkg, recv, name string }

var parkCalls = map[parkKey]bool{
	{clusterPath, "", "Barrier"}:              true,
	{clusterPath, "", "Broadcast"}:            true,
	{clusterPath, "", "AllGather"}:            true,
	{clusterPath, "", "Gather"}:               true,
	{clusterPath, "", "Scatter"}:              true,
	{clusterPath, "", "AllToAllv"}:            true,
	{clusterPath, "", "AllReduceSum"}:         true,
	{clusterPath, "", "AllReduceSumApply"}:    true,
	{clusterPath, "", "AllReduceGeneric"}:     true,
	{clusterPath, "", "AllReduceGenericInto"}: true,
	{clusterPath, "", "Send"}:                 true,
	{clusterPath, "", "Recv"}:                 true,
	{clusterPath, "Queue", "Send"}:            true,
	{clusterPath, "Queue", "Recv"}:            true,
	{clusterPath, "Forked", "Join"}:           true,
	{clusterPath + "/sim", "Task", "Park"}:    true,
}

func runParkWake(pass *Pass) error {
	if pass.Pkg == nil || !parkWakeScope[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) || parkWakeExemptFiles[pass.Filename(f)] {
			continue
		}
		// Every function body is scanned as its own scope (its lock set
		// is independent); checkFuncBody skips nested literals, and this
		// walk reaches them, so each statement is scanned exactly once,
		// in its innermost enclosing function.
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkFuncBody(pass, n.Body)
				}
			case *ast.FuncLit:
				checkFuncBody(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

// checkFuncBody reports blocking violations and the mutex-across-park
// pattern within one function scope. Nested function literals are
// separate scopes (their bodies run later, under their own locks) and
// are skipped here — the outer Inspect visits them on its own.
func checkFuncBody(pass *Pass, body *ast.BlockStmt) {
	// held tracks, per mutex expression, the lexically outstanding
	// Lock depth; deferHeld marks mutexes with a deferred Unlock
	// (held from that point to function return). This is a lexical
	// approximation of the dynamic lock set — branches are not
	// modeled — which is exactly sharp enough for lint: a park call
	// textually between Lock and Unlock deserves a second look even
	// when some path avoids it.
	held := map[string]int{}
	deferHeld := map[string]bool{}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			if kind, key := mutexCall(pass, n.Call); kind == "Unlock" {
				deferHeld[key] = true
				return false
			}
			return true
		case *ast.GoStmt:
			pass.Reportf(n.Pos(),
				"raw goroutine spawn in cluster-driven code: under the DES backend this goroutine is invisible to the scheduler; fork concurrent work with Rank.ForkStream")
			return true
		case *ast.SendStmt:
			pass.Reportf(n.Pos(),
				"naked channel send bypasses the backend-neutral park/wake and hangs the DES backend; use a cluster.Queue")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pass.Reportf(n.Pos(),
					"naked channel receive bypasses the backend-neutral park/wake and hangs the DES backend; use a cluster.Queue")
			}
		case *ast.SelectStmt:
			pass.Reportf(n.Pos(),
				"select blocks outside the scheduler and hangs the DES backend; use backend-neutral park/wake")
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					pass.Reportf(n.Pos(),
						"ranging over a channel blocks outside the scheduler and hangs the DES backend; use a cluster.Queue")
				}
			}
		case *ast.CallExpr:
			kind, key := mutexCall(pass, n)
			switch kind {
			case "Lock":
				held[key]++
			case "Unlock":
				if held[key] > 0 {
					held[key]--
				}
			}
			if fn := calleeFunc(pass.TypesInfo, n); fn != nil {
				if fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Sleep" {
					pass.Reportf(n.Pos(),
						"time.Sleep blocks the OS thread, not the simulated rank: it stalls the DES backend and charges no simulated time")
				}
				if isWaitCall(fn) {
					pass.Reportf(n.Pos(),
						"%s.Wait blocks outside the scheduler and hangs the DES backend; join forked work with Forked.Join", waitRecvName(fn))
				}
				// Transitive: a helper summarized as blocking on a naked
				// channel rendezvous hangs the DES backend from here just
				// as surely as an inline receive would.
				if pass.Facts != nil && pass.Facts.Has(fn, FactBlocksNative) {
					pass.Reportf(n.Pos(),
						"call blocks outside the scheduler: %s → %s — under the DES backend there is one runnable task, so a native block hangs the simulation; route it through the park/wake seam",
						shortKey(FuncKey(fn)), pass.Facts.Via(fn, FactBlocksNative))
				}
				pkg, recv := recvTypeName(fn)
				direct := parkCalls[parkKey{pkg, recv, fn.Name()}]
				// Parking itself is the design; parking while a mutex is
				// lexically held is the deadlock. The facts layer extends
				// the check one or more calls deep: a helper that reaches
				// Barrier parks this rank just the same.
				if direct || (pass.Facts != nil && pass.Facts.Has(fn, FactMayPark)) {
					what := fn.Name()
					if !direct {
						what = shortKey(FuncKey(fn)) + " (→ " + pass.Facts.Via(fn, FactMayPark) + ")"
					}
					for _, key := range sortedKeys(held) {
						if held[key] > 0 {
							pass.Reportf(n.Pos(),
								"%s may park the rank while %s is locked: the task that would wake it can need that mutex first — release before blocking", what, key)
						}
					}
					for _, key := range sortedKeys(deferHeld) {
						if deferHeld[key] {
							pass.Reportf(n.Pos(),
								"%s may park the rank while %s is locked (deferred Unlock holds it to return) — release before blocking", what, key)
						}
					}
				}
			}
		}
		return true
	})
}

// sortedKeys gives the lock-report loops a deterministic order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// mutexCall classifies a call as Lock/Unlock (incl. RLock/RUnlock) on
// a sync.Mutex or sync.RWMutex and returns the receiver's source text
// as the tracking key.
func mutexCall(pass *Pass, call *ast.CallExpr) (kind, key string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	name := sel.Sel.Name
	if name != "Lock" && name != "Unlock" && name != "RLock" && name != "RUnlock" {
		return "", ""
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return "", ""
	}
	if !namedIn(tv.Type, "sync", "Mutex") && !namedIn(tv.Type, "sync", "RWMutex") {
		return "", ""
	}
	var buf bytes.Buffer
	printer.Fprint(&buf, pass.Fset, sel.X)
	if name == "RLock" {
		name = "Lock"
	}
	if name == "RUnlock" {
		name = "Unlock"
	}
	return name, buf.String()
}

// isWaitCall reports whether the call is sync.WaitGroup.Wait or
// sync.Cond.Wait.
func isWaitCall(fn *types.Func) bool {
	if fn.Name() != "Wait" {
		return false
	}
	pkg, recv := recvTypeName(fn)
	return pkg == "sync" && (recv == "WaitGroup" || recv == "Cond")
}

func waitRecvName(fn *types.Func) string {
	_, recv := recvTypeName(fn)
	return "sync." + recv
}
