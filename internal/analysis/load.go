package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package ready for analysis. When test
// files exist, Files includes them (the in-package test variant, like
// `go vet` analyzes) and an external _test package becomes a Package
// of its own.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader type-checks a module from source with no toolchain
// dependency beyond the standard library: module packages are parsed
// and checked in dependency order, stdlib imports resolve through
// go/importer's source importer (GOROOT), and anything else is a load
// error — the module is dependency-free by policy.
type Loader struct {
	Fset *token.FileSet
	// IncludeTests adds _test.go files: in-package test files augment
	// their package, external foo_test files form their own package.
	IncludeTests bool

	modPath string
	root    string
	std     types.ImporterFrom
	// built memoizes the fully-checked base (non-test) variant of each
	// package — types.Info included — so a package is type-checked
	// exactly once for both import resolution and analysis output
	// (packages without in-package test files need no re-check).
	built map[string]*Package
}

type dirPkg struct {
	dir, path string
	files     []*ast.File // non-test
	inTest    []*ast.File // _test.go, package foo
	extTest   []*ast.File // _test.go, package foo_test
	deps      []string    // module-internal imports of files
}

// LoadModule loads every package under the module rooted at root (the
// directory containing go.mod).
func (l *Loader) LoadModule(root string) ([]*Package, error) {
	if l.Fset == nil {
		l.Fset = token.NewFileSet()
	}
	l.root = root
	mod, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("gnnvet: %w (run from the module root)", err)
	}
	for _, line := range strings.Split(string(mod), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			l.modPath = strings.TrimSpace(rest)
			break
		}
	}
	if l.modPath == "" {
		return nil, fmt.Errorf("gnnvet: no module line in %s/go.mod", root)
	}
	l.std = importer.ForCompiler(l.Fset, "source", nil).(types.ImporterFrom)
	l.built = map[string]*Package{}

	dirs, err := l.scan()
	if err != nil {
		return nil, err
	}
	byPath := map[string]*dirPkg{}
	order := make([]string, 0, len(dirs))
	for _, d := range dirs {
		byPath[d.path] = d
		order = append(order, d.path)
	}
	sort.Strings(order)

	// Base variants first, dependency order (checkBase recurses).
	for _, p := range order {
		if _, err := l.checkBase(byPath, p, nil); err != nil {
			return nil, err
		}
	}

	var out []*Package
	for _, p := range order {
		d := byPath[p]
		switch {
		case l.IncludeTests && len(d.inTest) > 0:
			// Only here is a second type-check of the same files
			// unavoidable: the test-augmented variant (what `go test`
			// compiles) is a different package body. Imports still
			// resolve against base variants, like the real toolchain.
			files := append(append([]*ast.File{}, d.files...), d.inTest...)
			pkg, err := l.check(p, files, byPath)
			if err != nil {
				return nil, err
			}
			out = append(out, pkg)
		case len(d.files) > 0:
			// The base variant was already checked (with full Info)
			// during the dependency pass — reuse it.
			out = append(out, l.built[p])
		}
		if l.IncludeTests && len(d.extTest) > 0 {
			pkg, err := l.check(p+"_test", d.extTest, byPath)
			if err != nil {
				return nil, err
			}
			out = append(out, pkg)
		}
	}
	return out, nil
}

// scan walks the module for directories holding Go files and parses
// them. testdata, hidden and underscore directories are skipped, as
// anywhere in the Go toolchain.
func (l *Loader) scan() ([]*dirPkg, error) {
	var dirs []*dirPkg
	err := filepath.Walk(l.root, func(p string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			return nil
		}
		base := filepath.Base(p)
		if p != l.root && (base == "testdata" || strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
			return filepath.SkipDir
		}
		names, err := filepath.Glob(filepath.Join(p, "*.go"))
		if err != nil || len(names) == 0 {
			return nil
		}
		sort.Strings(names)
		rel, _ := filepath.Rel(l.root, p)
		ip := l.modPath
		if rel != "." {
			ip = l.modPath + "/" + filepath.ToSlash(rel)
		}
		d := &dirPkg{dir: p, path: ip}
		for _, name := range names {
			af, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments)
			if err != nil {
				return fmt.Errorf("gnnvet: %w", err)
			}
			switch {
			case strings.HasSuffix(af.Name.Name, "_test"):
				d.extTest = append(d.extTest, af)
			case strings.HasSuffix(name, "_test.go"):
				d.inTest = append(d.inTest, af)
			default:
				d.files = append(d.files, af)
			}
			if !strings.HasSuffix(name, "_test.go") {
				for _, im := range af.Imports {
					dep := strings.Trim(im.Path.Value, `"`)
					if dep == l.modPath || strings.HasPrefix(dep, l.modPath+"/") {
						d.deps = append(d.deps, dep)
					}
				}
			}
		}
		dirs = append(dirs, d)
		return nil
	})
	return dirs, err
}

// checkBase builds (memoized) the non-test variant of a module
// package, recursing into module-internal imports first.
func (l *Loader) checkBase(byPath map[string]*dirPkg, path string, trail []string) (*types.Package, error) {
	if p, ok := l.built[path]; ok {
		return p.Types, nil
	}
	d := byPath[path]
	if d == nil {
		return nil, fmt.Errorf("gnnvet: import %q not found in module", path)
	}
	for _, t := range trail {
		if t == path {
			return nil, fmt.Errorf("gnnvet: import cycle through %q", path)
		}
	}
	trail = append(trail, path)
	for _, dep := range d.deps {
		if dep == path {
			continue
		}
		if _, err := l.checkBase(byPath, dep, trail); err != nil {
			return nil, err
		}
	}
	pkg, err := l.check(path, d.files, byPath)
	if err != nil {
		return nil, err
	}
	l.built[path] = pkg
	return pkg.Types, nil
}

// check type-checks one file set as the package at path.
func (l *Loader) check(path string, files []*ast.File, byPath map[string]*dirPkg) (*Package, error) {
	var errs []error
	conf := types.Config{
		Importer: importerFunc(func(ip string) (*types.Package, error) {
			return l.importPkg(byPath, ip)
		}),
		Error: func(err error) { errs = append(errs, err) },
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(errs) > 0 {
		return nil, fmt.Errorf("gnnvet: type-checking %s: %v (first of %d)", path, errs[0], len(errs))
	}
	dir := ""
	if len(files) > 0 {
		dir = filepath.Dir(l.Fset.Position(files[0].Pos()).Filename)
	}
	return &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}, nil
}

// importPkg resolves an import: module-internal paths against the base
// variants (building on demand), "unsafe" specially, everything else
// through the stdlib source importer.
func (l *Loader) importPkg(byPath map[string]*dirPkg, path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		return l.checkBase(byPath, path, nil)
	}
	return l.std.ImportFrom(path, l.root, 0)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// LoadFixture type-checks a single directory of fixture files as one
// package under the given import path — the analysistest entry point.
// The import path matters because several analyzers scope themselves
// by package path (charging: repro/internal/cluster; parkwake: the
// cluster-driven packages).
func LoadFixture(fset *token.FileSet, dir, importPath string) (*Package, error) {
	l := &Loader{Fset: fset, modPath: "\x00none"} // no module-internal imports in fixtures
	l.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	l.root = dir
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("gnnvet: no fixture files in %s", dir)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		af, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, af)
	}
	return l.check(importPath, files, nil)
}
