package analysis

import (
	"go/ast"
	"go/types"
)

// ArenaEscape enforces the lifetime contract of the epoch-persistent
// arenas (PR 8): buffers handed out by a //gnnvet:arena type —
// distsample's stageArena, sparse's Scratch, and anything tagged later
// — alias storage that the arena rewrites on its next use, under
// reuse-safety arguments that hold only within the epoch's rendezvous
// structure. Storing such a buffer into a struct field, a package
// variable, or a closure that outlives the epoch is a use-after-reuse
// bug the race detector cannot see (the rewrite is same-goroutine) and
// the goldens only catch if the corruption changes a result.
//
// The analyzer runs an assignment-escape dataflow over the facts
// layer: an expression is arena-backed if it selects a
// reference-carrying field of an arena type, calls a function whose
// summary says it returns arena memory (FactArenaMem — so helpers in
// other files and packages are seen through), or derives from a local
// already so tainted. Flagged stores are those whose destination
// outlives the frame: package-level variables, fields reached through
// a pointer receiver or parameter of a non-arena type, and closures
// capturing tainted locals stored to either. Stores into the arena
// itself, into tainted locals (interior pointers), and value copies of
// basic data are clean; so is returning arena memory — the function
// then carries FactArenaMem and its callers are checked instead.
var ArenaEscape = &Analyzer{
	Name: "arenaescape",
	Doc:  "arena-backed buffers (//gnnvet:arena types) must not be stored where they outlive the epoch",
	Run:  runArenaEscape,
}

func runArenaEscape(pass *Pass) error {
	if pass.Facts == nil {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue // tests may stash arena buffers to probe reuse
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkArenaEscapes(pass, fd)
		}
	}
	return nil
}

func checkArenaEscapes(pass *Pass, fd *ast.FuncDecl) {
	tw := newTaintWalk(&Package{Path: "", Fset: pass.Fset, Info: pass.TypesInfo}, pass.Facts)
	params := paramObjects(pass.TypesInfo, fd)
	tw.walk(fd.Body, nil, func(as *ast.AssignStmt, lhs, rhs ast.Expr, rhsTainted bool) {
		if !rhsTainted {
			// A closure can smuggle taint without its own expression
			// being tainted.
			if lit, ok := ast.Unparen(rhs).(*ast.FuncLit); ok {
				checkCaptureEscape(pass, tw, params, as, lhs, lit)
			}
			return
		}
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			if obj := identObj(pass.TypesInfo, id); obj != nil && isPackageLevel(obj) {
				pass.Reportf(as.Pos(),
					"arena-backed memory stored into package-level %s: the buffer is rewritten at the arena's next use — copy it, or keep it within the epoch%s",
					id.Name, taintOrigin(pass, rhs))
			}
			return // locals were already tainted by the walker
		}
		reportOutlivingStore(pass, tw, params, as, lhs, rhs)
	})
}

// reportOutlivingStore classifies a field/index store of arena memory
// by the root of its destination chain.
func reportOutlivingStore(pass *Pass, tw *taintWalk, params map[types.Object]bool, as *ast.AssignStmt, lhs, rhs ast.Expr) {
	root, viaArena := storeRoot(pass, lhs)
	if viaArena || root == nil {
		return // the arena managing its own storage, or unresolvable
	}
	obj := identObj(pass.TypesInfo, root)
	if obj == nil {
		return
	}
	switch {
	case isPackageLevel(obj):
		pass.Reportf(as.Pos(),
			"arena-backed memory stored into package-level %s: the buffer is rewritten at the arena's next use — copy it, or keep it within the epoch%s",
			root.Name, taintOrigin(pass, rhs))
	case params[obj] && !tw.vals[obj]:
		if _, isPtr := obj.Type().Underlying().(*types.Pointer); !isPtr {
			return // a value copy's fields die with the frame
		}
		pass.Reportf(as.Pos(),
			"arena-backed memory stored into a field of %s, which the caller owns beyond this epoch: the buffer is rewritten at the arena's next use — copy it before storing%s",
			root.Name, taintOrigin(pass, rhs))
	default:
		// A local struct absorbing arena refs: not an escape yet, but
		// the local now carries them (returning it is covered by
		// FactArenaMem; storing it is covered by the rules above).
		tw.vals[obj] = true
	}
}

// checkCaptureEscape flags a closure that captures arena-tainted
// locals being stored somewhere long-lived.
func checkCaptureEscape(pass *Pass, tw *taintWalk, params map[types.Object]bool, as *ast.AssignStmt, lhs ast.Expr, lit *ast.FuncLit) {
	longLived := false
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		obj := identObj(pass.TypesInfo, id)
		longLived = obj != nil && isPackageLevel(obj)
	} else if root, viaArena := storeRoot(pass, lhs); root != nil && !viaArena {
		obj := identObj(pass.TypesInfo, root)
		longLived = obj != nil && (isPackageLevel(obj) || params[obj])
	}
	if !longLived {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := identObj(pass.TypesInfo, id); obj != nil && tw.vals[obj] {
			pass.Reportf(as.Pos(),
				"closure capturing arena-backed %s escapes the epoch: the capture still points at storage the arena rewrites on its next use — copy %s first",
				id.Name, id.Name)
			return false
		}
		return true
	})
}

// storeRoot walks a destination chain (x.f[i].g = ...) to its root
// identifier. viaArena reports that some base along the chain is an
// arena type or a tainted interior pointer — stores there are the
// arena's own bookkeeping.
func storeRoot(pass *Pass, lhs ast.Expr) (root *ast.Ident, viaArena bool) {
	e := lhs
	for {
		if tv, ok := pass.TypesInfo.Types[e]; ok && pass.Facts.IsArenaType(tv.Type) {
			return nil, true
		}
		switch x := e.(type) {
		case *ast.Ident:
			return x, false
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil, false
		}
	}
}

// taintOrigin appends the witness chain when the stored value is a
// direct call to a summarized function.
func taintOrigin(pass *Pass, rhs ast.Expr) string {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return ""
	}
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || !pass.Facts.Has(fn, FactArenaMem) {
		return ""
	}
	return " (" + shortKey(FuncKey(fn)) + " " + pass.Facts.Via(fn, FactArenaMem) + ")"
}

func identObj(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

func isPackageLevel(obj types.Object) bool {
	return obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}

// paramObjects collects the receiver, parameters and named results of
// a declaration — the objects whose pointees the caller owns.
func paramObjects(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	objs := map[types.Object]bool{}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil {
					objs[obj] = true
				}
			}
		}
	}
	addFields(fd.Recv)
	addFields(fd.Type.Params)
	addFields(fd.Type.Results)
	return objs
}

// --- the shared arena taint dataflow ---

// taintWalk tracks, through one function body in lexical order, which
// local objects hold arena-backed memory. It is shared by the
// arenaescape analyzer (escape checks) and the facts layer
// (FactArenaMem seeding via return statements).
type taintWalk struct {
	pkg  *Package
	base *FactBase
	vals map[types.Object]bool
}

func newTaintWalk(pkg *Package, base *FactBase) *taintWalk {
	return &taintWalk{pkg: pkg, base: base, vals: map[types.Object]bool{}}
}

// walk traverses the body, updating taint at assignments and range
// clauses. onReturn (optional) fires for the body's own return
// statements, after taint up to that point is applied; onAssign
// (optional) fires for every assignment pair with the RHS verdict.
// A single lexical pass approximates loop-carried flow — sharp enough
// for lint, where the idiomatic escape is textually after the taint.
func (t *taintWalk) walk(body *ast.BlockStmt, onReturn func(*ast.ReturnStmt), onAssign func(as *ast.AssignStmt, lhs, rhs ast.Expr, rhsTainted bool)) {
	outer := map[*ast.ReturnStmt]bool{}
	for _, r := range outerReturns(body) {
		outer[r] = true
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			t.assign(n, onAssign)
		case *ast.RangeStmt:
			if t.tainted(n.X) {
				if id, ok := n.Value.(*ast.Ident); ok {
					if obj := identObj(t.pkg.Info, id); obj != nil && refCarrying(obj.Type()) {
						t.vals[obj] = true
					}
				}
			}
		case *ast.ReturnStmt:
			if onReturn != nil && outer[n] {
				onReturn(n)
			}
		}
		return true
	})
}

// assign applies one assignment: 1:1 pairs, or a many-from-one call
// where every LHS inherits the call's verdict.
func (t *taintWalk) assign(as *ast.AssignStmt, onAssign func(*ast.AssignStmt, ast.Expr, ast.Expr, bool)) {
	pair := func(lhs, rhs ast.Expr, tainted bool) {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			if obj := identObj(t.pkg.Info, id); obj != nil && !isPackageLevel(obj) {
				t.vals[obj] = tainted
			}
		}
		if onAssign != nil {
			onAssign(as, lhs, rhs, tainted)
		}
	}
	if len(as.Lhs) == len(as.Rhs) {
		for i := range as.Lhs {
			pair(as.Lhs[i], as.Rhs[i], t.tainted(as.Rhs[i]))
		}
		return
	}
	if len(as.Rhs) == 1 {
		tainted := t.tainted(as.Rhs[0])
		for _, lhs := range as.Lhs {
			pair(lhs, as.Rhs[0], tainted)
		}
	}
}

// tainted reports whether e evaluates to memory aliasing an arena.
// Value copies of reference-free data are never tainted.
func (t *taintWalk) tainted(e ast.Expr) bool {
	if e == nil {
		return false
	}
	if tv, ok := t.pkg.Info.Types[e]; ok && tv.Type != nil && !refCarrying(tv.Type) {
		return false
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := identObj(t.pkg.Info, x)
		return obj != nil && t.vals[obj]
	case *ast.SelectorExpr:
		if tv, ok := t.pkg.Info.Types[x.X]; ok && t.base.IsArenaType(tv.Type) {
			return true
		}
		return t.tainted(x.X)
	case *ast.IndexExpr:
		return t.tainted(x.X)
	case *ast.SliceExpr:
		return t.tainted(x.X)
	case *ast.StarExpr:
		return t.tainted(x.X)
	case *ast.UnaryExpr:
		return t.tainted(x.X)
	case *ast.TypeAssertExpr:
		return t.tainted(x.X)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if t.tainted(el) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		return t.taintedCall(x)
	}
	return false
}

func (t *taintWalk) taintedCall(call *ast.CallExpr) bool {
	// append: the result aliases the first argument's backing; a
	// non-basic element argument is stored by reference. An ellipsis
	// spread of basic elements copies values — safe.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := t.pkg.Info.Uses[id].(*types.Builtin); ok {
			if b.Name() != "append" {
				return false
			}
			if len(call.Args) > 0 && t.tainted(call.Args[0]) {
				return true
			}
			for i, arg := range call.Args[1:] {
				if !t.tainted(arg) {
					continue
				}
				at := t.pkg.Info.TypeOf(arg)
				if call.Ellipsis.IsValid() && i == len(call.Args)-2 {
					if sl, ok := at.Underlying().(*types.Slice); ok && !refCarrying(sl.Elem()) {
						continue
					}
				}
				return true
			}
			return false
		}
	}
	// Conversion: taint follows the operand.
	if tv, ok := t.pkg.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return t.tainted(call.Args[0])
	}
	fn := calleeFunc(t.pkg.Info, call)
	return fn != nil && t.base.Has(fn, FactArenaMem)
}

// refCarrying reports whether values of t can alias other memory:
// pointers, slices, maps, channels, interfaces, funcs, and aggregates
// containing any of those. Pure value types (numbers, bools, strings,
// structs of them) cannot leak an arena.
func refCarrying(t types.Type) bool {
	return refCarryingSeen(t, map[types.Type]bool{})
}

func refCarryingSeen(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return false
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface, *types.Signature:
		return true
	case *types.Array:
		return refCarryingSeen(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if refCarryingSeen(u.Field(i).Type(), seen) {
				return true
			}
		}
		return false
	}
	return true // unknown: assume it can alias
}
