// Package analysis is a self-contained static-analysis framework plus
// the gnnvet analyzer suite that mechanically enforces the simulator's
// determinism, charging-path and backend-neutrality invariants.
//
// The API deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer / Pass / Diagnostic) so the suite could be rebased onto
// the real multichecker if the dependency ever becomes available; the
// build environment here is offline and stdlib-only, so the framework
// reimplements the thin slice it needs on go/ast + go/types: a module
// loader (load.go), a suppression mechanism (allow.go) and a fixture
// test driver (analysistest).
//
// Every invariant an analyzer guards was violated at least once before
// it existed — see DESIGN.md "Static analysis & invariants" for the
// analyzer-by-analyzer history.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check. Run inspects a single package and
// reports findings through the pass; suppression markers are applied
// by the driver, not the analyzer.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Diagnostic is one finding, attributed to the check that produced it.
type Diagnostic struct {
	Pos     token.Pos
	Check   string
	Message string
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Facts is the module-wide fact base (facts.go): per-function
	// summaries computed before any analyzer runs, spanning every
	// package in import order. Graph is this package's static call
	// graph. Both are non-nil under RunPackage/RunModule.
	Facts *FactBase
	Graph *CallGraph

	diags *[]Diagnostic
}

// Reportf records a finding at pos under the pass's analyzer.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     pos,
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Filename returns the file name a node belongs to (base name only).
func (p *Pass) Filename(n ast.Node) string {
	full := p.Fset.Position(n.Pos()).Filename
	if i := strings.LastIndexByte(full, '/'); i >= 0 {
		return full[i+1:]
	}
	return full
}

// IsTestFile reports whether the node lives in a _test.go file.
func (p *Pass) IsTestFile(n ast.Node) bool {
	return strings.HasSuffix(p.Fset.Position(n.Pos()).Filename, "_test.go")
}

// WithStack walks every file, invoking fn with each node and the stack
// of its ancestors (outermost first; the node itself is not included).
// fn returning false prunes the subtree.
func WithStack(files []*ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if !fn(n, stack) {
				// Not descending: Inspect sends no matching nil, so
				// nothing is pushed.
				return false
			}
			stack = append(stack, n)
			return true
		})
	}
}

// funcObj resolves an identifier (or the Sel of a selector) to the
// *types.Func it uses, or nil.
func funcObj(info *types.Info, id *ast.Ident) *types.Func {
	if id == nil {
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// calleeFunc returns the *types.Func a call expression invokes
// (through selectors and parens), or nil for builtins, conversions and
// indirect calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return funcObj(info, fun)
	case *ast.SelectorExpr:
		return funcObj(info, fun.Sel)
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			return funcObj(info, id)
		}
		if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			return funcObj(info, sel.Sel)
		}
	case *ast.IndexListExpr:
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			return funcObj(info, id)
		}
		if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			return funcObj(info, sel.Sel)
		}
	}
	return nil
}

// namedIn reports whether t (after pointer indirection) is the named
// type pkgPath.name.
func namedIn(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == name &&
		obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// recvTypeName returns the receiver's named-type name and package path
// for a method, or "" for package-level functions.
func recvTypeName(fn *types.Func) (pkgPath, name string) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		if fn.Pkg() != nil {
			return fn.Pkg().Path(), ""
		}
		return "", ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
		return named.Obj().Pkg().Path(), named.Obj().Name()
	}
	return "", ""
}

// Analyzers is the gnnvet suite in reporting order.
var Analyzers = []*Analyzer{
	Walltime,
	GlobalRand,
	Charging,
	ParkWake,
	MapOrder,
	Benchpool,
	ArenaEscape,
	Faultseam,
}

func knownChecks() map[string]bool {
	known := make(map[string]bool, len(Analyzers))
	for _, a := range Analyzers {
		known[a.Name] = true
	}
	return known
}

// ByName resolves a comma-separated -checks selection against the
// suite, preserving suite order; an unknown name is an error.
func ByName(sel string) ([]*Analyzer, error) {
	if sel == "" {
		return Analyzers, nil
	}
	want := map[string]bool{}
	for _, n := range strings.Split(sel, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		found := false
		for _, a := range Analyzers {
			if a.Name == n {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown check %q", n)
		}
		want[n] = true
	}
	var out []*Analyzer
	for _, a := range Analyzers {
		if want[a.Name] {
			out = append(out, a)
		}
	}
	return out, nil
}

// RunPackage runs the analyzers over one loaded package and returns
// the surviving findings: suppression markers are honored, malformed
// markers become findings themselves, and the result is sorted by
// position. Facts are computed for this package alone — the
// single-package entry point analysistest drives; whole-module runs go
// through RunModule so facts cross package boundaries.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	allow, diags := ParseAllows(pkg.Fset, pkg.Files, knownChecks())
	base := NewFactBase()
	g := BuildCallGraph(pkg, base.taken)
	base.AddPackage(pkg, allow, g)
	more, err := runAnalyzers(pkg, analyzers, allow, base, g)
	if err != nil {
		return nil, err
	}
	diags = append(diags, more...)
	sortDiags(diags)
	return diags, nil
}

// PkgDiags pairs one package with its surviving findings.
type PkgDiags struct {
	Pkg   *Package
	Diags []Diagnostic
}

// RunModule runs the suite over a whole loaded module. Facts are
// computed first, package by package in import order (so a package's
// out-of-package callees are summarized before its own atoms
// propagate), then every analyzer runs per package against the
// module-wide fact base. Results follow the input package order; the
// marker count (well-formed //gnnvet:allow sites module-wide) backs
// gnnvet's -expectallows gate.
func RunModule(pkgs []*Package, analyzers []*Analyzer) (results []PkgDiags, base *FactBase, markers int, err error) {
	known := knownChecks()
	type prep struct {
		allow      *allowIndex
		allowDiags []Diagnostic
		graph      *CallGraph
	}
	preps := make(map[*Package]*prep, len(pkgs))
	base = NewFactBase()
	for _, pkg := range topoOrder(pkgs) {
		allow, adiags := ParseAllows(pkg.Fset, pkg.Files, known)
		g := BuildCallGraph(pkg, base.taken)
		base.AddPackage(pkg, allow, g)
		preps[pkg] = &prep{allow, adiags, g}
		markers += allow.Markers()
	}
	for _, pkg := range pkgs {
		pr := preps[pkg]
		diags := pr.allowDiags
		more, err := runAnalyzers(pkg, analyzers, pr.allow, base, pr.graph)
		if err != nil {
			return nil, nil, 0, err
		}
		diags = append(diags, more...)
		sortDiags(diags)
		results = append(results, PkgDiags{Pkg: pkg, Diags: diags})
	}
	return results, base, markers, nil
}

// topoOrder orders packages so that imports come before importers,
// considering only edges within the given set. The seen-guard makes
// apparent cycles (an augmented test variant whose _test.go files
// close an import loop) terminate rather than recurse forever.
func topoOrder(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	seen := make(map[*Package]bool, len(pkgs))
	out := make([]*Package, 0, len(pkgs))
	var visit func(p *Package)
	visit = func(p *Package) {
		if seen[p] {
			return
		}
		seen[p] = true
		for _, f := range p.Files {
			for _, im := range f.Imports {
				dep := strings.Trim(im.Path.Value, `"`)
				if d := byPath[dep]; d != nil && d != p {
					visit(d)
				}
			}
		}
		out = append(out, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return out
}

func runAnalyzers(pkg *Package, analyzers []*Analyzer, allow *allowIndex, base *FactBase, g *CallGraph) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		var raw []Diagnostic
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Facts:     base,
			Graph:     g,
			diags:     &raw,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
		}
		diags = append(diags, allow.Filter(pkg.Fset, raw)...)
	}
	return diags, nil
}

func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		if diags[i].Check != diags[j].Check {
			return diags[i].Check < diags[j].Check
		}
		return diags[i].Message < diags[j].Message
	})
}
