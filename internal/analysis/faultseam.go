package analysis

import (
	"go/ast"
	"go/types"
)

// Faultseam confines fault-injection plan construction to the FaultPlan
// seam. Failure plans enter a run only through cluster.CostModel.Faults,
// and the values that ride it — cluster.FaultPlan, cluster.Failure,
// cluster.RankFailure — are built only by the packages that own the
// seam: internal/cluster (the types and the fail-stop machinery),
// internal/resilience (FailAt / Plan / RandomPlan and the restart
// bookkeeping) and internal/cliutil (the -faults flag parser). A
// driver or experiment that hand-rolls a plan literal bypasses
// Validate, the seeded-random sweep conventions, and the restart
// driver's retire-on-fire bookkeeping; one that fabricates a
// RankFailure forges the error the recovery contract keys on. The
// analyzer flags composite literals of the three types anywhere else,
// steering construction through the resilience constructors.
var Faultseam = &Analyzer{
	Name: "faultseam",
	Doc:  "confine FaultPlan/Failure/RankFailure construction to the fault seam (cluster, resilience, cliutil)",
	Run:  runFaultseam,
}

// faultseamExempt lists the packages that own the seam.
var faultseamExempt = map[string]bool{
	"repro/internal/cluster":    true,
	"repro/internal/resilience": true,
	"repro/internal/cliutil":    true,
}

// faultseamTypes are the seam's value types, matched by name: the
// real ones live in repro/internal/cluster, and fixture stubs carry
// the same names.
var faultseamTypes = map[string]string{
	"FaultPlan":   "build plans with resilience.FailAt / resilience.Plan / resilience.RandomPlan (or cliutil.ParseFaults for flag input)",
	"Failure":     "build entries with resilience.Failure",
	"RankFailure": "RankFailure is produced by the cluster's fail-stop machinery only; synthesizing one forges the recovery contract's root-cause error",
}

func runFaultseam(pass *Pass) error {
	if pass.Pkg == nil || faultseamExempt[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue // tests may build plans to probe the seam itself
		}
		ast.Inspect(f, func(n ast.Node) bool {
			cl, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(cl)
			if t == nil {
				return true
			}
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok {
				return true
			}
			hint, hit := faultseamTypes[named.Obj().Name()]
			if !hit {
				return true
			}
			pass.Reportf(cl.Pos(), "fault-injection value %s constructed outside the FaultPlan seam: %s",
				named.Obj().Name(), hint)
			return true
		})
	}
	return nil
}
