// Package repro is a pure-Go reproduction of "Distributed Matrix-Based
// Sampling for Graph Neural Network Training" (Tripathy, Yelick, Buluç
// — MLSys 2024, arXiv:2311.02909).
//
// The library expresses GNN minibatch sampling as sparse matrix
// algebra and samples many minibatches in bulk (Algorithm 1 /
// Equation 1 of the paper), distributes the sampling step with either
// a Graph Replicated (communication-free) or Graph Partitioned
// (1.5D, sparsity-aware SpGEMM) algorithm, and wraps both in an
// end-to-end training pipeline with all-to-allv feature fetching.
// Multi-GPU clusters are simulated: collectives really move data
// between goroutine ranks while an α–β cost model calibrated to the
// paper's Perlmutter testbed accrues simulated time.
//
// # Quick start
//
//	d := repro.ProductsLike(repro.Small)
//	bulk := repro.SampleBulk(repro.GraphSAGE(), d.Graph.Adj, d.Batches(), d.Fanouts, 42)
//	fmt.Println(bulk.Layers[0].Adj) // stacked sampled adjacency
//
// Run a simulated distributed training epoch:
//
//	res, err := repro.Train(d, repro.TrainConfig{P: 8, C: 2})
//
// Regenerate a paper figure:
//
//	rows, err := repro.Figure4(os.Stdout, repro.ExperimentOptions{Profile: repro.Small})
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// recorded paper-vs-measured results.
package repro

import (
	"fmt"
	"io"
	"os"

	"repro/internal/autotune"
	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/cache"
	"repro/internal/cliutil"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/pipeline"
	"repro/internal/resilience"
	"repro/internal/sparse"
)

// Re-exported core types. The aliases expose the full method sets of
// the internal implementations through a stable public surface.
type (
	// CSR is a compressed sparse row matrix, the storage format for
	// adjacency, sampler and probability matrices.
	CSR = sparse.CSR
	// Sampler is one layer of the matrix-based sampling abstraction
	// (Algorithm 1). Implementations: GraphSAGE, LADIES, FastGCN.
	Sampler = core.Sampler
	// BulkSample is the output of bulk-sampling k minibatches.
	BulkSample = core.BulkSample
	// BatchGraph is one minibatch's sampled computation graph.
	BatchGraph = core.BatchGraph
	// Frontier is a per-batch vertex set at one sampling depth.
	Frontier = core.Frontier
	// Dataset bundles a graph with features, labels and training
	// configuration.
	Dataset = datasets.Dataset
	// Profile selects dataset size (Tiny / Small / Bench).
	Profile = datasets.Profile
	// CostModel holds the α–β link and device-throughput parameters of
	// the simulated cluster.
	CostModel = cluster.CostModel
	// CollectiveAlgorithm selects the schedule a simulated collective
	// charges under (FlatTree, Ring, Pairwise, Hierarchical).
	CollectiveAlgorithm = cluster.CollectiveAlgorithm
	// Collectives is the per-operation algorithm table carried by the
	// cost model (TrainConfig.Collectives, QuiverConfig.Collectives).
	Collectives = cluster.Collectives
	// Topology names the simulated machine's physical links and
	// switches the cost model onto the contention-aware charging path
	// (TrainConfig.Topology, QuiverConfig.Topology); nil keeps the
	// pure α–β model.
	Topology = cluster.Topology
	// PhysLinkStat is one physical link's traffic summary under a
	// contention topology (TrainResult.Cluster.PhysLinks).
	PhysLinkStat = cluster.PhysLinkStat
	// TrainConfig drives a simulated distributed training run.
	TrainConfig = pipeline.Config
	// TrainResult is the outcome of a training run, including the
	// Figure 4 phase breakdown per epoch.
	TrainResult = pipeline.Result
	// EpochStats is one epoch's sampling/fetch/propagation breakdown.
	EpochStats = pipeline.EpochStats
	// QuiverConfig drives the Quiver-strategy baseline.
	QuiverConfig = baseline.QuiverConfig
	// ExperimentOptions sizes a harness experiment.
	ExperimentOptions = bench.Options
	// FaultPlan is a deterministic fail-stop injection schedule carried
	// by the cost model (TrainConfig.Faults). Build plans with FailAt /
	// NewFaultPlan / RandomFaultPlan / ParseFaults — the faultseam
	// analyzer confines literal construction to the seam packages.
	FaultPlan = cluster.FaultPlan
	// Failure is one fail-stop event of a plan — the entry type of
	// RecoveryStats.Failures. Construct entries with FaultFailure.
	Failure = cluster.Failure
	// RankFailure is the root-cause error behind a fault-class abort.
	// Train recovers from injected failures internally (restart +
	// restore), so it surfaces only to direct cluster users;
	// errors.Is(err, ErrRankFailed) classifies such aborts.
	RankFailure = cluster.RankFailure
	// RecoveryStats reports what recovery cost on a faulted run
	// (TrainResult.Recovery): attempts, fired failures, resume epochs
	// and discarded simulated work.
	RecoveryStats = resilience.Stats
)

// Dataset size profiles.
const (
	Tiny  = datasets.Tiny
	Small = datasets.Small
	Bench = datasets.Bench
	// Scale is the scaling-study profile: many small batches so weak
	// scaling keeps one batch per rank all the way to p=512.
	Scale = datasets.Scale
)

// Training algorithm selectors.
const (
	// GraphReplicated replicates the adjacency matrix on every device;
	// sampling is communication-free (Section 5.1).
	GraphReplicated = pipeline.GraphReplicated
	// GraphPartitioned partitions the adjacency matrix 1.5D and runs
	// the sparsity-aware SpGEMM of Algorithm 2 (Section 5.2).
	GraphPartitioned = pipeline.GraphPartitioned
)

// Collective algorithm selectors for Collectives tables. DefaultAlgorithm
// (the zero value) keeps the paper's FlatTree forms and lets AutoTune
// choose; explicit selections are pinned.
const (
	DefaultAlgorithm = cluster.DefaultAlgorithm
	FlatTree         = cluster.FlatTree
	Ring             = cluster.Ring
	Pairwise         = cluster.Pairwise
	Hierarchical     = cluster.Hierarchical
)

// ParseCollectives builds a validated algorithm table from the CLI
// flag spellings ("flat", "ring", "pairwise", "hier", ...).
func ParseCollectives(allreduce, alltoall string) (Collectives, error) {
	return cluster.ParseCollectives(allreduce, alltoall)
}

// ParseTopology parses the CLI topology spellings ("ideal",
// "perlmutter", "oversub"); "ideal" is the nil topology (pure α–β, no
// contention).
func ParseTopology(s string) (*Topology, error) { return cluster.ParseTopology(s) }

// PerlmutterTopology returns the paper testbed's physical-link layout:
// one NIC per GPU, so only concurrent streams of one GPU ever contend.
func PerlmutterTopology() *Topology { return cluster.PerlmutterTopology() }

// OversubscribedTopology returns a commodity layout: one NIC per node
// shared by its GPUs behind a fabric core oversubscribed by factor.
func OversubscribedTopology(factor float64) *Topology {
	return cluster.OversubscribedTopology(factor)
}

// GraphSAGE returns the node-wise GraphSAGE sampler (Section 4.1).
func GraphSAGE() Sampler { return core.SAGE{} }

// LADIES returns the layer-wise LADIES sampler (Section 4.2).
func LADIES() Sampler { return core.LADIES{} }

// FastGCN returns the layer-wise FastGCN sampler (degree-weighted
// importance sampling restricted to the aggregated neighborhood).
func FastGCN() Sampler { return core.FastGCN{} }

// NewClusterGCN builds a graph-wise (ClusterGCN-style) sampler: the
// graph is partitioned into numClusters BFS-grown clusters; batches
// are cluster unions sampled as induced subgraphs. This extends the
// framework to the third sampler taxonomy of Section 2.2.
func NewClusterGCN(adj *CSR, numClusters int, seed int64) *core.ClusterGCN {
	return core.NewClusterGCN(adj, numClusters, seed)
}

// Feature-cache policies for TrainConfig.CachePolicy (the SALIENT++-
// style fetch extension of Section 8.1.2).
const (
	CacheNone         = cache.None
	CacheStaticDegree = cache.StaticDegree
	CacheLRU          = cache.LRU
)

// SaveDataset writes a dataset to the compact binary format.
func SaveDataset(w io.Writer, d *Dataset) error { return graphio.WriteDataset(w, d) }

// LoadDataset reads a dataset written by SaveDataset.
func LoadDataset(r io.Reader) (*Dataset, error) { return graphio.ReadDataset(r) }

// SampleBulk samples every minibatch in batches at once with the
// matrix-based bulk approach (Algorithm 1 over the stacked matrices of
// Equation 1). fanouts[0] applies at the batch layer.
func SampleBulk(s Sampler, adj *CSR, batches [][]int, fanouts []int, seed int64) *BulkSample {
	return core.SampleBulk(s, adj, batches, fanouts, seed)
}

// ProductsLike returns the OGB-Products analog dataset.
func ProductsLike(p Profile) *Dataset { return datasets.ProductsLike(p) }

// ProteinLike returns the HipMCL-Protein analog dataset (densest).
func ProteinLike(p Profile) *Dataset { return datasets.ProteinLike(p) }

// PapersLike returns the OGB-Papers100M analog dataset (largest,
// sparsest, directed).
func PapersLike(p Profile) *Dataset { return datasets.PapersLike(p) }

// LearnableSBM returns the stochastic-block-model dataset used by the
// accuracy experiment (Section 8.1.3 analog).
func LearnableSBM() *Dataset { return datasets.DefaultSBM() }

// Perlmutter returns the cost model calibrated to the paper's testbed
// (Section 7.2): 4x A100 per node, NVLink 3.0, Slingshot-11.
func Perlmutter() CostModel { return cluster.Perlmutter() }

// ErrRankFailed is the sentinel behind every fault-class abort: any
// error caused by an injected fail-stop (the failed rank's own demise
// or a survivor's poisoned collective) matches
// errors.Is(err, ErrRankFailed).
var ErrRankFailed = cluster.ErrRankFailed

// FailAt returns a single-failure plan: rank halts when its simulated
// clock reaches at (seconds). Set it on TrainConfig.Faults; Train
// recovers via restart, resuming from the latest epoch-boundary
// checkpoint when TrainConfig.CkptInterval schedules one.
func FailAt(rank int, at float64) *FaultPlan { return resilience.FailAt(rank, at) }

// FaultFailure constructs one fail-stop plan entry (rank, seconds).
func FaultFailure(rank int, at float64) Failure { return resilience.Failure(rank, at) }

// NewFaultPlan builds a plan from explicit entries (see FaultFailure);
// no entries means no injection (nil plan).
func NewFaultPlan(failures ...Failure) *FaultPlan { return resilience.Plan(failures...) }

// RandomFaultPlan draws k failures deterministically from seed: ranks
// uniform over [0, p), fail times uniform over [minAt, maxAt) simulated
// seconds.
func RandomFaultPlan(seed int64, p, k int, minAt, maxAt float64) *FaultPlan {
	return resilience.RandomPlan(seed, p, k, minAt, maxAt)
}

// ParseFaults parses the CLI -faults spelling, a comma-separated list
// of rank@seconds events ("1@0.5,3@1.25"); "" and "default" mean no
// injection (nil plan).
func ParseFaults(s string) (*FaultPlan, error) { return cliutil.ParseFaults(s) }

// Train runs simulated distributed minibatch training (Figure 3
// pipeline) and returns per-epoch phase breakdowns and the trained
// parameters. The epoch loop runs on the staged-execution engine:
// set TrainConfig.Overlap to software-pipeline bulk sampling and
// feature fetching against propagation — for the Graph Replicated and,
// via stream-safe communicator clones, the 1.5D Graph Partitioned
// algorithm alike (training outcomes are bit-identical to the default
// bulk-synchronous schedule; only the simulated schedule changes).
func Train(d *Dataset, cfg TrainConfig) (*TrainResult, error) {
	return pipeline.Run(d, cfg)
}

// Evaluate computes test accuracy of trained parameters on the given
// vertices.
func Evaluate(d *Dataset, params []float64, cfg TrainConfig, vertices []int) float64 {
	return pipeline.Evaluate(d, params, cfg, vertices, nil)
}

// TrainQuiver runs the Quiver-strategy baseline (per-batch sampling on
// a replicated graph).
func TrainQuiver(d *Dataset, cfg QuiverConfig) (*TrainResult, error) {
	return baseline.RunQuiver(d, cfg)
}

// Figure4 regenerates Figure 4 (Graph Replicated pipeline vs Quiver).
func Figure4(w io.Writer, o ExperimentOptions) ([]bench.Fig4Row, error) { return bench.Fig4(w, o) }

// Figure5 regenerates Figure 5 (Quiver GPU vs UVA sampling).
func Figure5(w io.Writer, o ExperimentOptions) ([]bench.Fig5Row, error) { return bench.Fig5(w, o) }

// Figure6 regenerates Figure 6 (replication vs no replication).
func Figure6(w io.Writer, o ExperimentOptions) ([]bench.Fig6Row, error) { return bench.Fig6(w, o) }

// Figure7 regenerates Figure 7 for "sage" or "ladies" (Graph
// Partitioned sampling breakdowns).
func Figure7(w io.Writer, sampler string, o ExperimentOptions) ([]bench.Fig7Row, error) {
	return bench.Fig7(w, sampler, o)
}

// CollectiveComparison runs the collectives microbenchmark: every
// collective algorithm against its analytic bound over GPU count ×
// message size, with per-link wire-byte counts.
func CollectiveComparison(w io.Writer, o ExperimentOptions) ([]bench.CollectiveRow, error) {
	return bench.CollectiveSweep(w, o)
}

// ContentionExperiment measures both distributed algorithms under
// finite, shared physical links (sequential and overlapped schedule ×
// topology): where the overlap gain erodes as prefetch streams and the
// gradient all-reduce share NIC injection bandwidth, with
// per-physical-link utilization.
func ContentionExperiment(w io.Writer, o ExperimentOptions) ([]bench.ContentionRow, error) {
	return bench.Contention(w, o)
}

// ScalingStudy runs the weak- and strong-scaling experiment to
// p=8192: three algorithm series (replicated, partitioned c=2, and
// partitioned c=CMax(p), the largest replication factor with c^2
// dividing p), each all-reduce schedule, ideal and oversubscribed
// topologies. Independent cells run on a worker pool
// (ExperimentOptions.SweepWorkers); tables are byte-identical at any
// worker count. Use the Scale profile for meaningful weak scaling
// (one batch per rank at every p).
func ScalingStudy(w io.Writer, o ExperimentOptions) ([]bench.ScalingRow, error) {
	return bench.Scaling(w, o)
}

// ResilienceExperiment sweeps the checkpoint interval against an
// injected fail-stop for both training strategies, reporting the
// checkpoint overhead of clean runs beside the recovery cost
// (attempts, resume epoch, discarded simulated work) of faulted ones.
// faults == nil injects a single failure at ~60% of the clean span;
// intervals == nil sweeps {0, 1, 2, 4}.
func ResilienceExperiment(w io.Writer, dataset string, p int, intervals []int, faults *FaultPlan, o ExperimentOptions) ([]bench.ResilienceRow, error) {
	return bench.Resilience(w, dataset, p, intervals, faults, o)
}

// PerfSuite measures the simulator's own performance on the pinned
// workload matrix (wall-clock, allocations, contention-ledger peak);
// CI gates regressions against the committed BENCH_*.json baseline
// (see PerfGate and ROADMAP.md for the baseline convention).
func PerfSuite(w io.Writer, o ExperimentOptions) ([]bench.PerfRow, error) {
	return bench.Perf(w, o)
}

// PerfGate compares measured perf rows against a committed baseline
// file, failing on >25% wall-time regression, allocation growth, or
// simulated-seconds drift.
func PerfGate(w io.Writer, baselinePath string, rows []bench.PerfRow) error {
	return bench.PerfGate(w, baselinePath, rows)
}

// ProfileFromEnv returns the dataset profile named by the
// GNN_EXAMPLE_PROFILE environment variable ("tiny", "small", "scale",
// "bench"), or def when the variable is unset. The examples/*
// walkthroughs size themselves through it so the CI smoke can run
// every walkthrough at the tiny profile; an unknown value panics
// (misconfigured CI should fail loudly, not silently run a bigger
// profile).
func ProfileFromEnv(def Profile) Profile {
	s := os.Getenv("GNN_EXAMPLE_PROFILE")
	if s == "" {
		return def
	}
	p, err := cliutil.ParseProfile(s)
	if err != nil {
		panic(fmt.Sprintf("repro: GNN_EXAMPLE_PROFILE: %v", err))
	}
	return p
}

// Table2 prints the system capability matrix.
func Table2(w io.Writer) { bench.Table2(w) }

// Table3 prints dataset statistics for the given profile.
func Table3(w io.Writer, p Profile) ([]bench.Table3Row, error) { return bench.Table3(w, p) }

// AccuracyExperiment trains the pipeline on the learnable dataset and
// reports test accuracy (Section 8.1.3 analog). Pass d == nil for the
// default dataset.
func AccuracyExperiment(w io.Writer, d *Dataset, epochs int, seed int64) (*bench.AccuracyResult, error) {
	return bench.Accuracy(w, d, epochs, seed)
}

// SBMDataset generates a learnable stochastic-block-model dataset with
// n vertices, the given class and feature counts, and a deterministic
// seed. Smaller configurations suit tests; LearnableSBM returns the
// experiment-sized default.
func SBMDataset(n, classes, features int, seed int64) *Dataset {
	return datasets.SBM(datasets.SBMConfig{
		N: n, Classes: classes, Features: features,
		IntraDeg: 10, InterDeg: 2, Noise: 0.5,
		BatchSize: 32, Fanouts: []int{5, 3}, LayerWidth: 32, Seed: seed,
	})
}

// EvaluateFull computes exact (full-batch, non-sampled) accuracy —
// the sampling-free reference.
func EvaluateFull(d *Dataset, params []float64, cfg TrainConfig, vertices []int) float64 {
	return pipeline.EvaluateFull(d, params, cfg, vertices)
}

// AutoTune fills the replication factor c and bulk size k of a config
// using the paper's methodology (Section 7.3): the largest values that
// fit the per-GPU memory budget.
func AutoTune(d *Dataset, cfg TrainConfig) (TrainConfig, error) {
	return autotune.TuneConfig(autotune.DefaultMemoryModel(), d, cfg)
}

// TriangleCount, ConnectedComponents and BFSLevels expose the
// semiring-based graph analytics layer.
func TriangleCount(g *graph.Graph) int64 { return graph.TriangleCount(g) }

// ConnectedComponents labels weakly connected components.
func ConnectedComponents(g *graph.Graph) ([]int, int) { return graph.ConnectedComponents(g) }

// BFSLevels returns hop distances from source (-1 if unreachable).
func BFSLevels(g *graph.Graph, source int) []int { return graph.BFSLevels(g, source) }
